package core

import (
	"math"
	"math/big"

	"repro/internal/platform"
)

// WordFeasible reports whether the increasing order encoded by w supports
// an acyclic scheme of throughput T. Per Lemma 4.4 (and the conservative
// dominance of Lemma 4.3), w is valid for T if and only if along the
// conservative filling:
//
//   - before every ■ letter, O(π) ≥ T (guarded nodes eat open capacity),
//   - before every ○ letter, O(π) + G(π) ≥ T.
func WordFeasible(ins *platform.Instance, w Word, T float64) bool {
	if w.Validate(ins) != nil || T <= 0 {
		return false
	}
	return wordFeasibleKernel(ins, w, T)
}

// wordFeasibleKernel is WordFeasible minus the O(L) word validation, for
// loops that probe one already-validated word at many throughputs (the
// long-word bisection runs it ~dozens of times per refinement, which at
// n=100k made redundant validation and the non-intrinsified NaN-aware
// math.Max the hottest region of the whole large-n solve). The branchy
// clamps are bit-identical to math.Max on these never-NaN operands.
func wordFeasibleKernel(ins *platform.Instance, w Word, T float64) bool {
	if T <= 0 {
		return false
	}
	eps := tol(T)
	bO, bG := ins.OpenBW, ins.GuardedBW
	Tme := T - eps
	O := ins.B0
	G := 0.0
	i, j := 0, 0
	for _, l := range w {
		if l == platform.Guarded {
			if O < Tme {
				return false
			}
			O -= T
			G += bG[j]
			j++
		} else {
			if O+G < Tme {
				return false
			}
			fromOpen := T - G
			if fromOpen < 0 {
				fromOpen = 0
			}
			O += bO[i] - fromOpen
			if G -= T; G < 0 {
				G = 0
			}
			i++
		}
	}
	return true
}

// WordThroughput returns T*_ac(w), the optimal acyclic throughput over
// schemes compatible with the order encoded by w. Using the closed forms
// of Lemma 4.4,
//
//	O(π) = S^O_i − j·T − W(π),   O(π)+G(π) = S^O_i + S^G_j − (i+j)·T,
//	W(π) = max(0, max over ○-prefixes π'○ of (i'·T − S^G_{j'})),
//
// each validity condition expands into linear inequalities k·T ≤ B, so
// the per-word optimum is a minimum of B/k ratios — O(L²) of them.
//
// For long words (beyond wordExactCutoff letters) the quadratic
// enumeration is replaced by bisection over the O(L) feasibility check,
// which is indistinguishable at float64 resolution and keeps the
// average-case experiments (n = 1000, thousands of repetitions) fast.
func WordThroughput(ins *platform.Instance, w Word) float64 {
	return WordThroughputWithWorkspace(ins, w, nil)
}

// WordThroughputWithWorkspace is WordThroughput with the W(π)-candidate
// scratch taken from ws, so per-word evaluation inside search and
// enumeration loops stops allocating.
func WordThroughputWithWorkspace(ins *platform.Instance, w Word, ws *Workspace) float64 {
	if err := w.Validate(ins); err != nil {
		panic(err)
	}
	ws = ws.ensure()
	ws.stats.WordEvals++
	if len(w) > wordExactCutoff {
		return wordThroughputBisect(ins, w)
	}
	best := math.Inf(1)
	consider := func(bound float64, coeff int) {
		if v := bound / float64(coeff); v < best {
			best = v
		}
	}
	// cands: counts after each ○ position (W candidates of Lemma 4.4).
	cands := ws.cands[:0]
	defer func() { ws.cands = cands[:0] }()
	oSum := ins.B0 // S^O_i = b0 + b1 + ... + bi
	gSum := 0.0    // S^G_j
	i, j := 0, 0
	for _, l := range w {
		if l == platform.Guarded {
			// Constraint: O(prefix) ≥ T, prefix has counts (i, j).
			consider(oSum, j+1)
			for _, c := range cands {
				// O with W-candidate c: S^O_i − jT − (iS·T − gSumS) ≥ T.
				consider(oSum+c.gSum, j+1+c.iS)
			}
			gSum += ins.GuardedBW[j]
			j++
		} else {
			// Constraint: O+G ≥ T with counts (i, j).
			consider(oSum+gSum, i+j+1)
			oSum += ins.OpenBW[i]
			i++
			cands = append(cands, wCand{iS: i, gSum: gSum})
		}
	}
	if math.IsInf(best, 1) {
		// Empty word: no receivers; throughput is capped by the source.
		return ins.B0
	}
	return best
}

// wordExactCutoff separates the exact O(L²) evaluation from the O(L·log)
// bisection fast path.
const wordExactCutoff = 300

// wordThroughputBisect brackets T*_ac(w) with WordFeasible. 80 halvings
// of [0, T*] push the bracket below 2^-80·T*, far below float64 noise on
// the ratios the experiments report.
func wordThroughputBisect(ins *platform.Instance, w Word) float64 {
	hi := OptimalCyclicThroughput(ins)
	// The caller (WordThroughputWithWorkspace) already validated w, so the
	// probes go straight to the kernel instead of re-validating 80 times.
	if wordFeasibleKernel(ins, w, hi) {
		return hi
	}
	lo := 0.0
	for iter := 0; iter < 80; iter++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			// Bracket exhausted at float64 resolution; further halvings
			// cannot move lo.
			break
		}
		if wordFeasibleKernel(ins, w, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// WordThroughputExact is the exact-rational twin of WordThroughput.
func WordThroughputExact(ins *platform.Instance, w Word) *big.Rat {
	if err := w.Validate(ins); err != nil {
		panic(err)
	}
	bs := ins.RatBandwidths()
	n := ins.N()
	var best *big.Rat
	consider := func(bound *big.Rat, coeff int64) {
		v := new(big.Rat).Quo(bound, new(big.Rat).SetInt64(coeff))
		if best == nil || v.Cmp(best) < 0 {
			best = v
		}
	}
	type wCand struct {
		iS   int
		gSum *big.Rat
	}
	var cands []wCand
	oSum := new(big.Rat).Set(bs[0])
	gSum := new(big.Rat)
	i, j := 0, 0
	for _, l := range w {
		if l == platform.Guarded {
			consider(oSum, int64(j+1))
			for _, c := range cands {
				consider(new(big.Rat).Add(oSum, c.gSum), int64(j+1+c.iS))
			}
			gSum = new(big.Rat).Add(gSum, bs[1+n+j])
			j++
		} else {
			consider(new(big.Rat).Add(oSum, gSum), int64(i+j+1))
			oSum = new(big.Rat).Add(oSum, bs[1+i])
			i++
			cands = append(cands, wCand{iS: i, gSum: gSum})
		}
	}
	if best == nil {
		return new(big.Rat).Set(bs[0])
	}
	return best
}
