package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/platform"
)

// PackCyclicGuarded approaches the optimal cyclic throughput of Lemma
// 5.1 on general (open + guarded) instances — the fourth quadrant of the
// paper's problem grid, where optimal solutions may require arbitrarily
// large degrees (Section V, Figure 6) and the paper gives no explicit
// constructor.
//
// The packer peels acyclic layers: each round solves the acyclic problem
// on the residual capacities (Theorem 4.1 machinery) and superposes the
// resulting sub-scheme. Because every peel ships a genuine rate-w flow
// from the source to every node on capacity the accounting reserves for
// it, the union certifies throughput Σw — the achieved value is correct
// by construction, whatever the policy does.
//
// Three details make the peeling converge to T* instead of stalling:
//
//   - suppliers inside a peel are drained source-last (the source's
//     bandwidth is the scarcest multi-round resource: every future peel
//     needs w of it, while ordinary node capacity is only useful after
//     the node has been served), and latest-first among ordinary nodes,
//     which rotates capacity use across rounds the way cyclic optima do;
//   - each layer is chosen under reserve conditions (bestFrugalPeel):
//     after the peel, the residual capacities must still satisfy all
//     three Lemma 5.1 budgets for the remaining target — this is what
//     steers the packer away from locally-maximal layers that strand
//     guarded capacity (compare ω1 vs ω2 on the Figure 6 family);
//   - each peel's rate is clamped to the remaining target, so the last
//     layer lands exactly on T.
//
// It returns the packed scheme and the throughput actually certified
// (≤ T). Tests measure the optimality gap; on every instance family we
// draw it is < 1e-6 relative.
func PackCyclicGuarded(ins *platform.Instance, T float64) (*Scheme, float64, error) {
	return PackCyclicGuardedWithWorkspace(ins, T, nil)
}

// PackCyclicGuardedWithWorkspace is the packer on reusable scratch: the
// residual-capacity vector, the per-peel supplier pools, the pending
// rate list and every feasibility probe's word buffer come from ws.
func PackCyclicGuardedWithWorkspace(ins *platform.Instance, T float64, ws *Workspace) (*Scheme, float64, error) {
	if T <= 0 {
		return nil, 0, fmt.Errorf("core: PackCyclicGuarded needs positive throughput, got %v", T)
	}
	ws = ws.ensure()
	tstar := OptimalCyclicThroughput(ins)
	if T > tstar+tol(tstar) {
		return nil, 0, fmt.Errorf("core: throughput %v exceeds cyclic optimum %v", T, tstar)
	}
	// The open-only quadrant has the dedicated Theorem 5.2 constructor.
	if ins.M() == 0 {
		s, err := CyclicOpenWithWorkspace(ins, T, ws)
		if err != nil {
			return nil, 0, err
		}
		return s, T, nil
	}
	// With no open nodes the source must feed every guarded node
	// directly: a star at rate T ≤ b0/m (Lemma 5.1).
	if ins.N() == 0 {
		s := NewScheme(ins)
		for j := 1; j <= ins.M(); j++ {
			s.Add(0, j, T)
		}
		if err := s.Validate(); err != nil {
			return nil, 0, err
		}
		return s, T, nil
	}

	resid := ws.residFor(ins)
	scheme := NewScheme(ins)
	packed := 0.0
	eps := tol(T)
	const maxRounds = 400

	for round := 0; round < maxRounds && packed < T-eps; round++ {
		if resid[0] <= eps {
			break // the source is exhausted; no acyclic layer can ship more
		}
		rIns, openIDs, guardedIDs := residualInstance(ins, resid)
		wRem := T - packed

		// Final layer: if the whole remainder fits acyclically, take it.
		// The probe word lives in the workspace buffer: it is consumed by
		// peelOnce before the next probe can overwrite it.
		if word, ok := ws.probeWord(rIns, wRem*(1-1e-13)); ok {
			w := wRem * (1 - 1e-13)
			if peelOnce(scheme, rIns, word, w, resid, openIDs, guardedIDs, ws) {
				packed += w
				continue
			}
		}

		// Otherwise pick the source-frugal layer: among the candidate
		// words, the largest w that is feasible AND leaves the source
		// enough bandwidth for the remaining target (every future layer
		// must ship ≥ its rate from the source).
		w, word := bestFrugalPeel(rIns, wRem, eps, ws)
		if w <= eps {
			// No reserve-respecting layer: fall back to a plain maximal
			// acyclic peel (progress beats stalling; the reserve test
			// re-engages next round).
			var err error
			w, word, err = OptimalAcyclicThroughputWithWorkspace(rIns, ws)
			if err != nil || w <= eps {
				break
			}
			w = math.Min(w, wRem) * (1 - 1e-13)
		}
		if w <= eps || !peelOnce(scheme, rIns, word, w, resid, openIDs, guardedIDs, ws) {
			break
		}
		packed += w
	}
	if err := scheme.Validate(); err != nil {
		return nil, 0, fmt.Errorf("core: packed scheme invalid: %w", err)
	}
	return scheme, packed, nil
}

// bestFrugalPeel maximizes the layer rate over the candidate words
// subject to feasibility and the reserve condition: after the peel, the
// residual capacities must still satisfy all three Lemma 5.1 budgets for
// the remaining target (source rate, open capacity for guarded demand,
// total capacity). Bisection per candidate — feasibility and every class
// spend are monotone in w.
func bestFrugalPeel(rIns *platform.Instance, wRem, eps float64, ws *Workspace) (float64, Word) {
	n, m := rIns.N(), rIns.M()
	sumOpen, sumGuarded := rIns.SumOpen(), rIns.SumGuarded()
	var bestW float64
	var bestWord Word
	candidates := frugalWords(rIns)
	for ci := 0; ci <= len(candidates); ci++ {
		// Candidate ci < len: a fixed ω word. Candidate ci == len: the
		// GreedyTest word recomputed at each probed rate on the workspace
		// buffer (a feasible word is parked via keepWord until the next
		// success, matching the dichotomic search's double-buffering).
		wordAt := func(w float64) (Word, bool) {
			if ci < len(candidates) {
				return candidates[ci], WordFeasible(rIns, candidates[ci], w)
			}
			cand, feasible := ws.probeWord(rIns, w)
			if feasible {
				cand = ws.keepWord(cand)
			}
			return cand, feasible
		}
		var lastWord Word
		ok := func(w float64) bool {
			if w <= 0 {
				return false
			}
			cand, feasible := wordAt(w)
			if !feasible {
				return false
			}
			src, open, guarded := classSpends(rIns, cand, w, ws)
			rem := wRem - w
			r0 := rIns.B0 - src
			o := sumOpen - open
			g := sumGuarded - guarded
			if r0 < rem-eps {
				return false
			}
			if m > 0 && r0+o < float64(m)*rem-eps {
				return false
			}
			if r0+o+g < float64(n+m)*rem-eps {
				return false
			}
			lastWord = cand
			return true
		}
		lo, hi := 0.0, wRem
		if ok(hi) {
			lo = hi
		} else {
			for iter := 0; iter < 60; iter++ {
				mid := lo + (hi-lo)/2
				if ok(mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
		}
		if lo > bestW && lastWord != nil && ok(lo) {
			bestW = lo * (1 - 1e-13)
			// lastWord may alias the workspace buffer later probes reuse;
			// the surviving layer word is copied into stable storage.
			bestWord = cloneWord(lastWord)
		}
	}
	return bestW, bestWord
}

// frugalWords lists the candidate layer orders: the guarded-first ω2
// interleaving (one guarded node rides the source, open relays carry the
// rest — the rotation structure optimal cyclic schemes use) and ω1 as
// the open-rich alternative.
func frugalWords(rIns *platform.Instance) []Word {
	var ws []Word
	if w2, err := Omega2(rIns.N(), rIns.M()); err == nil {
		ws = append(ws, w2)
	}
	if w1, err := Omega1(rIns.N(), rIns.M()); err == nil {
		ws = append(ws, w1)
	}
	return ws
}

// classSpends simulates the conservative source-last filling for
// (word, w) and returns the bandwidth consumed from the source, from the
// ordinary open nodes, and from the guarded nodes (∞ source spend when
// the filling fails). Pool storage comes from the workspace: the
// bisection probes this ~180 times per peel round.
func classSpends(rIns *platform.Instance, word Word, w float64, ws *Workspace) (src, open, guarded float64) {
	eps := tol(w)
	// Pools hold remaining capacities; the source sits at the bottom of
	// the open pool, ordinary suppliers stack on top (drained first).
	openPool := append(ws.poolA[:0], rIns.B0)
	guardedPool := ws.poolB[:0]
	defer func() {
		ws.poolA = openPool[:0]
		ws.poolB = guardedPool[:0]
	}()
	draw := func(pool []float64, need float64, fromOpen bool) ([]float64, float64) {
		for need > eps {
			top := -1
			for k := len(pool) - 1; k >= 0; k-- {
				if pool[k] > eps {
					top = k
					break
				}
			}
			if top < 0 {
				return pool, need
			}
			take := math.Min(need, pool[top])
			if fromOpen {
				if top == 0 {
					src += take
				} else {
					open += take
				}
			} else {
				guarded += take
			}
			pool[top] -= take
			need -= take
		}
		return pool, 0
	}
	i, j := 0, 0
	for _, l := range word {
		if l == platform.Guarded {
			var rest float64
			openPool, rest = draw(openPool, w, true)
			if rest > eps {
				return math.Inf(1), open, guarded
			}
			guardedPool = append(guardedPool, rIns.GuardedBW[j])
			j++
		} else {
			var rest float64
			guardedPool, rest = draw(guardedPool, w, false)
			if rest > eps {
				openPool, rest = draw(openPool, rest, true)
			}
			if rest > eps {
				return math.Inf(1), open, guarded
			}
			openPool = append(openPool, rIns.OpenBW[i])
			i++
		}
	}
	return src, open, guarded
}

// residualInstance builds the sorted residual instance plus the maps
// from residual ranks back to original node ids.
func residualInstance(ins *platform.Instance, resid []float64) (*platform.Instance, []int, []int) {
	n := ins.N()
	openIDs := make([]int, n)
	for i := range openIDs {
		openIDs[i] = 1 + i
	}
	sort.SliceStable(openIDs, func(a, b int) bool { return resid[openIDs[a]] > resid[openIDs[b]] })
	guardedIDs := make([]int, ins.M())
	for i := range guardedIDs {
		guardedIDs[i] = 1 + n + i
	}
	sort.SliceStable(guardedIDs, func(a, b int) bool { return resid[guardedIDs[a]] > resid[guardedIDs[b]] })

	open := make([]float64, len(openIDs))
	for i, id := range openIDs {
		open[i] = resid[id]
	}
	guarded := make([]float64, len(guardedIDs))
	for i, id := range guardedIDs {
		guarded[i] = resid[id]
	}
	rIns := platform.MustInstance(resid[0], open, guarded)
	return rIns, openIDs, guardedIDs
}

// peelOnce runs the conservative filling for (word, w) on the residual
// instance, draining ordinary suppliers latest-first and the source
// last, and transcribes the resulting rates into the accumulated scheme
// under original node ids. It returns false if the filling failed (in
// which case nothing was committed — the caller simply stops peeling).
// Supplier stacks and the pending rate list reuse workspace storage
// (the supplier queues are idle here: nothing below this frame builds a
// scheme from a word).
func peelOnce(scheme *Scheme, rIns *platform.Instance, word Word, w float64,
	resid []float64, openIDs, guardedIDs []int, ws *Workspace) bool {

	eps := tol(w)
	openPool := ws.openQ[:0] // stacks: drain from the back
	guardedPool := ws.guardedQ[:0]
	pending := ws.pending[:0]
	defer func() {
		ws.openQ = openPool[:0]
		ws.guardedQ = guardedPool[:0]
		ws.pending = pending[:0]
	}()
	openPool = append(openPool, supplier{id: 0, rem: resid[0]})

	draw := func(pool []supplier, to int, need float64) ([]supplier, float64) {
		for need > eps {
			top := -1
			for k := len(pool) - 1; k >= 0; k-- {
				if pool[k].rem > eps {
					top = k
					break
				}
			}
			if top < 0 {
				return pool, need
			}
			take := math.Min(need, pool[top].rem)
			pending = append(pending, pendingRate{from: pool[top].id, to: to, r: take})
			pool[top].rem -= take
			need -= take
		}
		return pool, 0
	}

	nextOpen, nextGuarded := 0, 0
	for _, l := range word {
		if l == platform.Guarded {
			id := guardedIDs[nextGuarded]
			nextGuarded++
			var rest float64
			openPool, rest = draw(openPool, id, w)
			if rest > eps {
				return false
			}
			guardedPool = append(guardedPool, supplier{id: id, rem: resid[id]})
		} else {
			id := openIDs[nextOpen]
			nextOpen++
			var rest float64
			guardedPool, rest = draw(guardedPool, id, w)
			if rest > eps {
				openPool, rest = draw(openPool, id, rest)
			}
			if rest > eps {
				return false
			}
			// Keep the source at the bottom of the stack: ordinary
			// nodes are pushed on top and therefore drained first.
			openPool = append(openPool, supplier{id: id, rem: resid[id]})
		}
	}
	// Commit: transcribe rates and debit residual capacities.
	for _, p := range pending {
		scheme.Add(p.from, p.to, p.r)
		resid[p.from] -= p.r
		if resid[p.from] < 0 {
			resid[p.from] = 0
		}
	}
	return true
}
