// Package chaos is the daemon's deterministic fault-injection layer.
//
// A Plan is a seeded set of rules, one per named fault Point. Arm
// installs the plan globally; instrumented call sites ask Hit(point)
// whether this particular visit should fail and, if so, how (a delay,
// a fraction of bytes to tear, a connection drop). Every decision is a
// pure function of (seed, point, per-point hit index), so the full
// decision schedule of a plan is byte-reproducible: two runs with the
// same seed fire the same faults at the same per-point visit numbers
// regardless of goroutine interleaving, and Plan.Trace renders that
// schedule as a canonical wire document for replay and diffing.
//
// When no plan is armed, Hit is a single atomic pointer load returning
// false — hot paths carrying hook sites stay benchmark-neutral.
package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Point names one instrumented fault site. The catalog below is the
// complete set; Points() reports it in stable order.
type Point string

const (
	// GateStarve delays a request inside the worker-gate acquire,
	// simulating a starved gate (the request's context keeps ticking).
	GateStarve Point = "service.gate.starve"
	// SolveDelay stalls a solve after the gate but before the engine.
	SolveDelay Point = "service.solve.delay"
	// ConnDrop aborts the HTTP connection instead of writing a
	// response — the client sees a mid-request connection reset.
	ConnDrop Point = "service.conn.drop"
	// StreamWrite delays a job-stream NDJSON line and tears it into
	// a short write + flush before the remainder.
	StreamWrite Point = "service.stream.write"
	// PeerSlow stalls an outbound peer solve so hedges fire.
	PeerSlow Point = "cluster.peer.slow"
	// StoreAppend tears a planstore append: a prefix of the frame
	// reaches the file and the append "crashes" before indexing.
	StoreAppend Point = "planstore.append.torn"
	// StoreCompact fails a compaction after the rewrite but before
	// the atomic rename, leaving the old log in place.
	StoreCompact Point = "planstore.compact.fail"
	// StreamDrop closes the client SDK's stream body between items,
	// forcing the auto-resume path.
	StreamDrop Point = "client.stream.drop"
	// SlowRead throttles the client SDK's response reads to one byte
	// per delay, simulating a slow consumer.
	SlowRead Point = "client.read.slow"
)

// catalog is the fixed, ordered list of points. Index into it is the
// wire-stable identity used by counters and trace docs.
var catalog = [...]Point{
	GateStarve,
	SolveDelay,
	ConnDrop,
	StreamWrite,
	PeerSlow,
	StoreAppend,
	StoreCompact,
	StreamDrop,
	SlowRead,
}

var catalogIndex = func() map[Point]int {
	m := make(map[Point]int, len(catalog))
	for i, pt := range catalog {
		m[pt] = i
	}
	return m
}()

// Points reports the full fault-point catalog in stable order.
func Points() []Point {
	pts := make([]Point, len(catalog))
	copy(pts, catalog[:])
	return pts
}

// Rule configures injection at one point. Rate is the per-visit firing
// probability in [0,1]. Delay is the base stall for delay-type faults;
// the actual stall is deterministically jittered in [Delay/2, Delay).
// Frac caps the fraction of a write that lands before tearing (torn
// appends, short stream writes); the actual fraction is drawn
// deterministically from (0, Frac].
type Rule struct {
	Point Point
	Rate  float64
	Delay time.Duration
	Frac  float64
}

// Fault describes one fired injection: which point, the 1-based
// per-point visit number that fired, and the concrete delay/fraction
// drawn for this visit.
type Fault struct {
	Point Point
	Seq   int64
	Delay time.Duration
	Frac  float64
}

// Plan is a seeded, immutable fault schedule.
type Plan struct {
	seed  int64
	rules [len(catalog)]Rule // zero Rate = point disabled
}

// NewPlan builds a plan from seed and rules. Rules naming unknown
// points are rejected; points without a rule never fire.
func NewPlan(seed int64, rules ...Rule) (*Plan, error) {
	p := &Plan{seed: seed}
	for _, r := range rules {
		i, ok := catalogIndex[r.Point]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown fault point %q", r.Point)
		}
		if r.Rate < 0 || r.Rate > 1 {
			return nil, fmt.Errorf("chaos: %s: rate %v outside [0,1]", r.Point, r.Rate)
		}
		if r.Frac < 0 || r.Frac > 1 {
			return nil, fmt.Errorf("chaos: %s: frac %v outside [0,1]", r.Point, r.Frac)
		}
		p.rules[i] = r
	}
	return p, nil
}

// DefaultPlan is the soak harness's stock plan: every point armed at a
// modest rate with small delays, hostile enough to exercise every
// recovery path yet light enough that traffic still completes.
func DefaultPlan(seed int64) *Plan {
	p, err := NewPlan(seed,
		Rule{Point: GateStarve, Rate: 0.05, Delay: 20 * time.Millisecond},
		Rule{Point: SolveDelay, Rate: 0.05, Delay: 10 * time.Millisecond},
		Rule{Point: ConnDrop, Rate: 0.02},
		Rule{Point: StreamWrite, Rate: 0.10, Delay: 5 * time.Millisecond, Frac: 0.8},
		Rule{Point: PeerSlow, Rate: 0.10, Delay: 50 * time.Millisecond},
		Rule{Point: StoreAppend, Rate: 0.10, Frac: 0.9},
		Rule{Point: StoreCompact, Rate: 0.50},
		Rule{Point: StreamDrop, Rate: 0.05},
		Rule{Point: SlowRead, Rate: 0.05, Delay: 2 * time.Millisecond},
	)
	if err != nil { // unreachable: the stock rules name catalog points
		panic(err)
	}
	return p
}

// Seed reports the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Rules reports the plan's active rules in catalog order.
func (p *Plan) Rules() []Rule {
	var out []Rule
	for _, r := range p.rules {
		if r.Rate > 0 {
			out = append(out, r)
		}
	}
	return out
}

// decide is the pure decision function: does visit n (1-based) of
// point i fire, and with which drawn delay/fraction. Everything
// derives from mix64 over (seed, point index, n).
func (p *Plan) decide(i int, n int64) (Fault, bool) {
	r := p.rules[i]
	if r.Rate <= 0 {
		return Fault{}, false
	}
	h := mix64(uint64(p.seed)<<8 ^ uint64(i)<<56 ^ uint64(n))
	if unit(h) >= r.Rate {
		return Fault{}, false
	}
	f := Fault{Point: r.Point, Seq: n, Delay: r.Delay, Frac: r.Frac}
	if r.Delay > 0 {
		// Jitter into [Delay/2, Delay): deterministic but not lockstep.
		j := unit(mix64(h ^ 0xd1b54a32d192ed03))
		f.Delay = r.Delay/2 + time.Duration(j*float64(r.Delay/2))
	}
	if r.Frac > 0 {
		// Draw from (0, Frac]: at least something, never everything.
		u := unit(mix64(h ^ 0x8cb92ba72f3d8dd7))
		f.Frac = r.Frac * (1 - u)
		if f.Frac <= 0 {
			f.Frac = r.Frac / 2
		}
	}
	return f, true
}

// mix64 is a splitmix64 finalizer — a bijective avalanche over the
// packed (seed, point, visit) word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1) with 53 bits of precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// ---------------------------------------------------------------------------
// Injector

// Injector is an armed plan plus per-point visit counters. The
// counters — not wall time or goroutine identity — drive decisions,
// so each point's firing sequence is deterministic under any
// interleaving.
type Injector struct {
	plan *Plan
	hits [len(catalog)]atomic.Int64
}

// active is the globally armed injector; nil means disarmed and makes
// Hit a single atomic load.
var active atomic.Pointer[Injector]

// injectedTotal counts fired faults per point, monotonically across
// arm/disarm cycles — the source for bmpcast_chaos_injected_total.
var injectedTotal [len(catalog)]atomic.Int64

// Arm installs plan globally and returns its injector. A nil plan
// disarms.
func Arm(plan *Plan) *Injector {
	if plan == nil {
		active.Store(nil)
		return nil
	}
	inj := &Injector{plan: plan}
	active.Store(inj)
	return inj
}

// Disarm removes any armed plan; Hit returns false everywhere again.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is currently installed.
func Armed() bool { return active.Load() != nil }

// Hit asks whether this visit to point pt should fail. Disarmed, it
// costs one atomic load. Armed, it bumps the point's visit counter and
// evaluates the plan's pure decision function.
func Hit(pt Point) (Fault, bool) {
	inj := active.Load()
	if inj == nil {
		return Fault{}, false
	}
	i, ok := catalogIndex[pt]
	if !ok {
		return Fault{}, false
	}
	n := inj.hits[i].Add(1)
	f, fire := inj.plan.decide(i, n)
	if fire {
		injectedTotal[i].Add(1)
	}
	return f, fire
}

// PointCount pairs a fault point with a fired-injection count.
type PointCount struct {
	Point Point
	Count int64
}

// InjectedTotals reports monotonic fired counts per point in catalog
// order, including zero entries, for /metrics.
func InjectedTotals() []PointCount {
	out := make([]PointCount, len(catalog))
	for i, pt := range catalog {
		out[i] = PointCount{Point: pt, Count: injectedTotal[i].Load()}
	}
	return out
}

// Visits reports how many times each point has been visited on this
// injector (fired or not), in catalog order.
func (inj *Injector) Visits() []PointCount {
	out := make([]PointCount, len(catalog))
	for i, pt := range catalog {
		out[i] = PointCount{Point: pt, Count: inj.hits[i].Load()}
	}
	return out
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() when
// interrupted. Injection sites use it so a stalled request still
// honors cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Trace

// TraceRule is the wire form of one rule plus its decision schedule:
// the 1-based visit numbers within the horizon that fire.
type TraceRule struct {
	Point   string  `json:"point"`
	Rate    float64 `json:"rate"`
	DelayMS float64 `json:"delay_ms,omitempty"`
	Frac    float64 `json:"frac,omitempty"`
	Fires   []int64 `json:"fires"`
}

// TraceDoc is the byte-reproducible fault trace: the plan and, for
// every active point, exactly which visits fire within the horizon.
// Rendering the same plan twice yields identical bytes.
type TraceDoc struct {
	V       int         `json:"v"`
	Seed    int64       `json:"seed"`
	Horizon int64       `json:"horizon"`
	Rules   []TraceRule `json:"rules"`
}

// Trace renders the plan's decision schedule over the first horizon
// visits of each point as a canonical wire document.
func (p *Plan) Trace(horizon int64) ([]byte, error) {
	doc := TraceDoc{V: wire.Version, Seed: p.seed, Horizon: horizon}
	for i, r := range p.rules {
		if r.Rate <= 0 {
			continue
		}
		tr := TraceRule{
			Point:   string(r.Point),
			Rate:    r.Rate,
			DelayMS: float64(r.Delay) / float64(time.Millisecond),
			Frac:    r.Frac,
			Fires:   []int64{},
		}
		for n := int64(1); n <= horizon; n++ {
			if _, fire := p.decide(i, n); fire {
				tr.Fires = append(tr.Fires, n)
			}
		}
		doc.Rules = append(doc.Rules, tr)
	}
	return wire.Marshal(doc)
}
