package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// Tiny cells keep the smoke test fast: one distribution, one p, one
// small size, few repetitions.
func TestSmallCellTable(t *testing.T) {
	out, errOut, code := runCLI(t, "-reps", "10", "-sizes", "8", "-dists", "Unif100", "-probs", "0.7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"dist", "Unif100", "0.7", "optimal acyclic ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "Unif100"); n != 1 {
		t.Errorf("expected exactly one data row, saw %d", n)
	}
}

func TestCSVOutput(t *testing.T) {
	out, errOut, code := runCLI(t, "-reps", "5", "-sizes", "8", "-dists", "LN1", "-probs", "0.5", "-csv")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.HasPrefix(out, "dist,p,n,reps,") {
		t.Fatalf("missing CSV header:\n%.120s", out)
	}
	if !strings.Contains(out, "LN1,0.5,8,5,") {
		t.Errorf("missing LN1 data row:\n%s", out)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	args := []string{"-reps", "8", "-sizes", "10", "-dists", "Power1", "-probs", "0.9", "-csv", "-seed", "7"}
	a, _, code := runCLI(t, args...)
	if code != 0 {
		t.Fatal("first run failed")
	}
	b, _, code := runCLI(t, args...)
	if code != 0 || a != b {
		t.Fatal("same seed must reproduce identical output")
	}
}

func TestBadInputs(t *testing.T) {
	if _, errOut, code := runCLI(t, "-dists", "Gaussian"); code != 2 || !strings.Contains(errOut, "unknown distribution") {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if _, _, code := runCLI(t, "-sizes", "1"); code != 2 {
		t.Fatal("size < 2 should exit 2")
	}
	if _, _, code := runCLI(t, "-probs", "1.5"); code != 2 {
		t.Fatal("probability > 1 should exit 2")
	}
}
