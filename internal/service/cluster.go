package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/client"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/wire"
)

// The cluster layer: N replicas shard one logical plan cache by
// consistent-hashing each request's content address (the SHA-256 of
// its canonical wire encoding — the same key the cache uses) onto a
// replica ring. A replica that receives a solve it does not own
// forwards it to the owner's /v1/cluster/solve, so every distinct plan
// is solved once cluster-wide and lands in exactly one replica's
// cache (the owner's singleflight collapses concurrent copies). The
// forward is hedged: when the owner stays silent past Config.
// HedgeAfter — or fails outright — the replica solves locally and
// back-fills the owner's cache via /v1/cluster/fill, so a slow or dead
// owner costs latency, never availability.
//
// Membership is gossip-lite: POST /v1/cluster/join|leave applies a
// change and (when asked) propagates it to every known member once.
// Ring swaps only steer *future* requests — in-flight solves, jobs and
// streams finish on the replica they started on, which is why job ids
// are namespaced per replica (j3-a1b2c3) and job handles pin to their
// endpoint.
//
// Everything below speaks the exported client SDK and versioned wire
// documents; there is no private inter-replica protocol.

// DefaultHedgeAfter is the owner-latency budget before a forwarded
// solve is hedged with a local one, when the config does not choose.
const DefaultHedgeAfter = 150 * time.Millisecond

// backfillTimeout bounds one asynchronous cache back-fill.
const backfillTimeout = 5 * time.Second

// clustered reports whether this replica is part of a cluster.
func (s *Server) clustered() bool { return s.node != nil }

// peer returns (building lazily) the single-endpoint SDK client for a
// member. Peer calls are single-shot — the hedge supplies redundancy,
// retries would only delay it.
func (s *Server) peer(ep string) *client.Client {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if c, ok := s.peers[ep]; ok {
		return c
	}
	c, err := client.NewFromConfig(client.Config{
		Endpoints: []string{ep},
		Retry:     client.Retry{Retries: -1},
	})
	if err != nil { // unreachable: ep is a non-empty member name
		panic(err)
	}
	s.peers[ep] = c
	return c
}

// maybeForward routes one decoded solve by ring ownership. When the
// key belongs to a peer it forwards there (hedged with a local solve)
// and reports forwarded=true; a local owner — or an unencodable
// request, which has no content address — reports forwarded=false and
// leaves the caller on the ordinary local path.
func (s *Server) maybeForward(r *http.Request, req engine.Request) (out []byte, forwarded bool, err error) {
	canonical, encErr := wire.EncodeRequest(req)
	if encErr != nil {
		return nil, false, nil
	}
	owner, self := s.node.Owner(cluster.Key(canonical))
	if self || owner == "" {
		return nil, false, nil
	}
	s.forwardsN.Add(1)
	out, fromFallback, err := cluster.Hedged(r.Context(), s.cfg.HedgeAfter,
		func(ctx context.Context) ([]byte, error) {
			if f, ok := chaos.Hit(chaos.PeerSlow); ok {
				// Slow owner: stall the ask so the hedge timer fires and
				// the local fallback races it.
				if err := chaos.Sleep(ctx, f.Delay); err != nil {
					return nil, err
				}
			}
			out, err := s.peer(owner).PeerSolveRaw(ctx, canonical)
			if err != nil {
				s.peerErrsN.Add(1)
			}
			return out, err
		},
		func(ctx context.Context) ([]byte, error) {
			s.hedgesN.Add(1)
			if err := s.acquireCtx(ctx); err != nil {
				return nil, engineCanceled(err)
			}
			defer s.release()
			out, _, err := s.solveRendered(ctx, req)
			return out, err
		})
	if err != nil {
		return nil, true, err
	}
	if fromFallback {
		s.fallbackWinsN.Add(1)
		s.backfill(owner, canonical, out)
	}
	return out, true, nil
}

// backfill pushes a locally solved plan to the replica that owns its
// key, asynchronously and best-effort — a lost fill costs the owner
// one future re-solve.
func (s *Server) backfill(owner string, canonical, rendered []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.jobsWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.jobsWG.Done()
		ctx, cancel := context.WithTimeout(s.jobsCtx, backfillTimeout)
		defer cancel()
		if _, err := s.peer(owner).PeerFill(ctx, canonical, rendered); err != nil {
			s.peerErrsN.Add(1)
			return
		}
		s.fillsSentN.Add(1)
	}()
}

// ---------------------------------------------------------------------------
// POST /v1/cluster/solve — the peer-to-peer solve endpoint

// handleClusterSolve answers a solve exactly like /v1/solve except it
// never forwards: a peer asked this replica *because* the ring says
// the key is ours, and answering locally regardless of ring view makes
// forwarding loops impossible even while membership changes disagree.
func (s *Server) handleClusterSolve(w http.ResponseWriter, r *http.Request) {
	defer s.track("clustersolve")()
	s.serveSolve(w, r, false)
}

// ---------------------------------------------------------------------------
// POST /v1/cluster/fill — peer cache back-fill

func (s *Server) handleClusterFill(w http.ResponseWriter, r *http.Request) {
	defer s.track("clusterfill")()
	body, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var doc wire.FillDoc
	if err := wireUnmarshal(body, &doc, "fill request"); err != nil {
		s.fail(w, err)
		return
	}
	if doc.V != wire.Version {
		s.fail(w, fmt.Errorf("%w: fill request has v=%d", wire.ErrVersion, doc.V))
		return
	}
	req, err := wire.DecodeRequest(doc.Request)
	if err != nil {
		s.fail(w, fmt.Errorf("fill request document: %w", err))
		return
	}
	plan, err := wire.DecodePlan(doc.Plan)
	if err != nil {
		s.fail(w, fmt.Errorf("fill plan document: %w", err))
		return
	}
	// Re-canonicalize rather than trust the raw bytes: a RawMessage cut
	// from an indented outer document carries shifted indentation, and
	// the cache must store exactly what its own encoder would emit
	// (decode→re-encode of a canonical document is byte-identical).
	rendered, err := wireMarshal(plan)
	if err != nil {
		s.fail(w, err)
		return
	}
	stored := false
	if s.cache != nil {
		stored = s.cache.PutRendered(req, rendered)
	}
	if stored {
		s.fillsRecvN.Add(1)
	}
	s.replyDoc(w, wire.FillAckDoc{V: wire.Version, Stored: stored})
}

// ---------------------------------------------------------------------------
// membership: GET /v1/cluster/members, POST /v1/cluster/join|leave

// membersDoc snapshots this replica's membership view.
func (s *Server) membersDoc() wire.MembersDoc {
	return wire.MembersDoc{
		V:           wire.Version,
		Self:        s.node.Self(),
		Members:     s.node.Members(),
		RingVersion: s.node.Version(),
	}
}

// errNotClustered answers cluster membership calls on a standalone
// replica.
func errNotClustered() error {
	return fmt.Errorf("%w: this replica is not clustered (start serve with -self)", wire.ErrMalformed)
}

func (s *Server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	defer s.track("clustermembers")()
	if !s.clustered() {
		s.fail(w, errNotClustered())
		return
	}
	s.replyDoc(w, s.membersDoc())
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	defer s.track("clusterjoin")()
	s.memberOp(w, r, true)
}

func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	defer s.track("clusterleave")()
	s.memberOp(w, r, false)
}

// memberOp applies one membership change and answers the resulting
// view. Changes propagate at most one hop (forwarded copies carry
// Propagate=false), so an announcement reaches every member without
// ever echoing.
func (s *Server) memberOp(w http.ResponseWriter, r *http.Request, join bool) {
	if !s.clustered() {
		s.fail(w, errNotClustered())
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var doc wire.MemberOpDoc
	if err := wireUnmarshal(body, &doc, "membership request"); err != nil {
		s.fail(w, err)
		return
	}
	if doc.V != wire.Version {
		s.fail(w, fmt.Errorf("%w: membership request has v=%d", wire.ErrVersion, doc.V))
		return
	}
	ep := cluster.Normalize(doc.Endpoint)
	if ep == "" {
		s.fail(w, fmt.Errorf("%w: membership request names no endpoint", wire.ErrMalformed))
		return
	}
	var changed bool
	if join {
		changed = s.node.Join(ep)
	} else {
		changed = s.node.Leave(ep)
	}
	if changed && doc.Propagate {
		s.propagate(ep, join)
	}
	s.replyDoc(w, s.membersDoc())
}

// propagate forwards a membership change to every other known member,
// asynchronously and with Propagate off.
func (s *Server) propagate(ep string, join bool) {
	members := s.node.Members()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.jobsWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.jobsWG.Done()
		ctx, cancel := context.WithTimeout(s.jobsCtx, backfillTimeout)
		defer cancel()
		for _, m := range members {
			if m == s.node.Self() || m == ep {
				continue
			}
			var err error
			if join {
				_, err = s.peer(m).ClusterJoin(ctx, ep, false)
			} else {
				_, err = s.peer(m).ClusterLeave(ctx, ep, false)
			}
			if err != nil {
				s.peerErrsN.Add(1)
			}
		}
	}()
}

// JoinCluster announces this replica to each seed and merges the
// members they answer with, so one reachable seed teaches the joiner
// the whole cluster (and, via propagation, the whole cluster about
// the joiner). It errors only when seeds were given and none answered.
func (s *Server) JoinCluster(ctx context.Context, seeds []string) error {
	if !s.clustered() {
		return errors.New("service: JoinCluster on a standalone replica (set Config.Self)")
	}
	var lastErr error
	joined := 0
	for _, seed := range seeds {
		seed = cluster.Normalize(seed)
		if seed == "" || seed == s.node.Self() {
			continue
		}
		doc, err := s.peer(seed).ClusterJoin(ctx, s.node.Self(), true)
		if err != nil {
			lastErr = err
			continue
		}
		joined++
		s.node.Join(seed)
		for _, m := range doc.Members {
			s.node.Join(cluster.Normalize(m))
		}
	}
	if joined == 0 && lastErr != nil {
		return fmt.Errorf("service: joining cluster: %w", lastErr)
	}
	return nil
}

// LeaveCluster announces this replica's departure to every member,
// best-effort. Local state is untouched: in-flight jobs and streams
// keep running, the replica just stops receiving newly routed keys.
func (s *Server) LeaveCluster(ctx context.Context) {
	if !s.clustered() {
		return
	}
	for _, m := range s.node.Members() {
		if m == s.node.Self() {
			continue
		}
		if _, err := s.peer(m).ClusterLeave(ctx, s.node.Self(), true); err != nil {
			s.peerErrsN.Add(1)
		}
	}
}

// Members snapshots this replica's member view (nil when standalone) —
// a test and operator accessor; the wire form is /v1/cluster/members.
func (s *Server) Members() []string {
	if !s.clustered() {
		return nil
	}
	return s.node.Members()
}
