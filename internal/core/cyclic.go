package core

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// CyclicOpen implements the Theorem 5.2 constructor: for an instance
// without guarded nodes and a target throughput
// T ≤ T* = min(b0, (b0+O)/n), it builds a (generally cyclic) scheme of
// throughput T in which every node has outdegree
// o_i ≤ max(⌈b_i/T⌉ + 2, 4).
//
// The construction follows the paper's two phases:
//
//  1. run Algorithm 1 until the first index i0 with S_{i0-1} < i0·T,
//     yielding an (i0−1)-partial solution (if no such index exists the
//     acyclic scheme is already optimal and is returned as-is);
//  2. insert the remaining nodes one by one, rerouting small flows so
//     the last two inserted nodes always exchange a total of exactly T
//     (invariants (P1)–(P4) of the proof).
func CyclicOpen(ins *platform.Instance, T float64) (*Scheme, error) {
	return CyclicOpenWithWorkspace(ins, T, nil)
}

// CyclicOpenWithWorkspace is CyclicOpen with transient state (the
// reroute step's in-edge scan) on reusable scratch — the phase-2
// insertion no longer materializes the whole communication graph to
// read one node's in-edges.
func CyclicOpenWithWorkspace(ins *platform.Instance, T float64, ws *Workspace) (*Scheme, error) {
	if ins.M() != 0 {
		return nil, fmt.Errorf("core: CyclicOpen requires an open-only instance, got m=%d", ins.M())
	}
	ws = ws.ensure()
	ws.stats.Builds++
	n := ins.N()
	if n == 0 {
		return NewScheme(ins), nil
	}
	if T <= 0 {
		return nil, fmt.Errorf("core: CyclicOpen needs positive throughput, got %v", T)
	}
	tstar := OptimalCyclicThroughput(ins)
	if T > tstar+tol(tstar) {
		return nil, fmt.Errorf("core: throughput %v exceeds cyclic optimum %v", T, tstar)
	}
	T = math.Min(T, tstar) // clamp float dust so invariants hold exactly

	i0 := firstShortIndex(ins, T)
	if i0 == 0 {
		// Algorithm 1 reaches T on its own; nothing cyclic needed.
		scheme, lastFull, _ := acyclicOpenFill(ins, T, n)
		if lastFull != n {
			return nil, fmt.Errorf("core: internal: partial fill served %d < %d at T=%v", lastFull, n, T)
		}
		return scheme, nil
	}
	if i0 == 1 {
		return nil, fmt.Errorf("core: internal: i0=1 implies T > b0 (T=%v, b0=%v)", T, ins.B0)
	}

	// Phase 1: (i0−1)-partial solution from senders 0..i0−1.
	scheme, lastFull, missing := acyclicOpenFill(ins, T, i0-1)
	if lastFull != i0-1 {
		return nil, fmt.Errorf("core: internal: partial fill served %d, want %d", lastFull, i0-1)
	}
	mAt := func(i int) float64 { return float64(i)*T - ins.OpenPrefix(i-1) } // M_i = iT − S_{i−1}
	Mi := mAt(i0)
	if math.Abs(Mi-missing) > tol(T*float64(n)) {
		return nil, fmt.Errorf("core: internal: missing flow %v disagrees with M_%d=%v", missing, i0, Mi)
	}

	// The reroute edge (Cu, Cv) = (C0, C1) always carries rate T ≥ M_i.
	const u, v = 0, 1
	eps := tol(T)

	if i0 == n {
		// Simple case: no C_{i+1}; α = β = 0, R_n ignored.
		scheme.shift(u, v, -Mi)
		scheme.shift(u, n, +Mi)
		scheme.shift(n, v, +Mi)
		return scheme, nil
	}

	// Initial case: insert C_{i0} and C_{i0+1} together.
	i := i0
	Mnext := mAt(i + 1)
	alpha := math.Max(0, Mnext-Mi)
	beta := Mnext - alpha
	Ri := ins.Bandwidth(i) - Mi

	// Reroute α of C_i's partial in-flow (from the set A) to C_{i+1}.
	if alpha > eps {
		rem := alpha
		ws.edges = scheme.InEdges(i, ws.edges[:0])
		for _, e := range ws.edges {
			if rem <= eps {
				break
			}
			take := math.Min(e.Weight, rem)
			scheme.shift(e.From, i, -take)
			scheme.shift(e.From, i+1, +take)
			rem -= take
		}
		if rem > eps {
			return nil, fmt.Errorf("core: internal: cannot reroute α=%v from A (short %v)", alpha, rem)
		}
	}
	// Reroute M_i from the (u,v) edge to C_i.
	scheme.shift(u, v, -Mi)
	scheme.shift(u, i, +Mi)
	// C_i feeds C_{i+1} and gives back to C_v.
	scheme.shift(i, i+1, Ri+beta)
	if Mi-beta > eps {
		scheme.shift(i, v, Mi-beta)
	}
	// C_{i+1} closes the cycles.
	if beta > eps {
		scheme.shift(i+1, v, beta)
	}
	if alpha > eps {
		scheme.shift(i+1, i, alpha)
	}
	back := alpha // c_{i+1,i}

	// Induction: insert C_k for k = i0+2 .. n. The running pair is
	// (C_{k-1}, C_{k-2}) with c_{k-1,k-2} = back (and forward edge
	// c_{k-2,k-1} = T − back by invariant (P1)).
	for k := i + 2; k <= n; k++ {
		Mk := mAt(k)
		Rprev := ins.Bandwidth(k-1) - mAt(k-1)
		a := math.Max(0, Mk-back)
		b := Mk - a // = min(Mk, back)
		// C_{k-1} pours its remaining capacity into C_k.
		scheme.shift(k-1, k, Rprev)
		// Part b of the backward flow C_{k-1}→C_{k-2} detours via C_k.
		if b > eps {
			scheme.shift(k-1, k-2, -b)
			scheme.shift(k-1, k, +b)
			scheme.shift(k, k-2, +b)
		}
		// Part a of the forward flow C_{k-2}→C_{k-1} detours via C_k.
		if a > eps {
			scheme.shift(k-2, k-1, -a)
			scheme.shift(k-2, k, +a)
			scheme.shift(k, k-1, +a)
		}
		back = a
	}
	return scheme, nil
}

// SolveCyclicOpen builds the optimal-throughput cyclic scheme for an
// open-only instance: T* = min(b0, (b0+O)/n) (Lemma 5.1 with m = 0),
// achieved with outdegrees ≤ max(⌈b_i/T*⌉+2, 4) (Theorem 5.2).
func SolveCyclicOpen(ins *platform.Instance) (float64, *Scheme, error) {
	return SolveCyclicOpenWithWorkspace(ins, nil)
}

// SolveCyclicOpenWithWorkspace is SolveCyclicOpen on reusable scratch.
func SolveCyclicOpenWithWorkspace(ins *platform.Instance, ws *Workspace) (float64, *Scheme, error) {
	T := OptimalCyclicThroughput(ins)
	s, err := CyclicOpenWithWorkspace(ins, T, ws)
	if err != nil {
		return 0, nil, err
	}
	return T, s, nil
}
