package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/platform"
)

// BatchOptions tunes the parallel sweep runner.
type BatchOptions struct {
	// Workers is the pool size; ≤ 0 means GOMAXPROCS.
	Workers int
}

// Batch solves every instance with the solver on a shared worker pool
// and returns results in input order: results[i] always corresponds to
// instances[i], whatever the completion interleaving, so a parallel
// sweep is a drop-in replacement for the serial loop. The first solver
// error (lowest instance index) aborts the sweep; cancelling ctx stops
// workers from picking up new instances and returns ctx.Err().
func Batch(ctx context.Context, s Solver, instances []*platform.Instance, opts BatchOptions) ([]Result, error) {
	results := make([]Result, len(instances))
	err := ForEach(ctx, len(instances), opts.Workers, func(ctx context.Context, i int) error {
		res, err := s.Solve(ctx, instances[i])
		if err != nil {
			return fmt.Errorf("engine: instance %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// BatchByName is Batch with the solver resolved from the Default
// registry.
func BatchByName(ctx context.Context, solver string, instances []*platform.Instance, opts BatchOptions) ([]Result, error) {
	s, err := Get(solver)
	if err != nil {
		return nil, err
	}
	return Batch(ctx, s, instances, opts)
}

// ForEach runs fn(ctx, i) for i in [0, n) on a worker pool. It is the
// engine's generic sweep primitive: Batch, the Figure 7 grid and the
// Figure 19 repetition loops all run through it. Guarantees:
//
//   - workers ≤ max(1, min(workers, n)), defaulting to GOMAXPROCS;
//   - indexes are claimed in order, so early indexes start first and
//     callers can fill index-addressed slices with no further locking;
//   - the first fn error cancels the pool's context and wins (lowest
//     index among recorded errors);
//   - cancelling ctx stops workers before their next claim and ForEach
//     returns ctx.Err().
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || pctx.Err() != nil {
					return
				}
				if err := fn(pctx, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	// A worker can lose the race with cancel() and record a wrapped
	// context.Canceled for a later index; the causing error must win.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}
