package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/distribution"
	"repro/internal/generator"
	"repro/internal/platform"
)

// sweepInstances draws count reproducible random tight instances.
func sweepInstances(t testing.TB, count, nodes int) []*platform.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(2014))
	out := make([]*platform.Instance, count)
	for i := range out {
		ins, err := generator.Random(distribution.Unif100(), nodes, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ins
	}
	return out
}

// stripWall zeroes the nondeterministic Result fields — wall time and
// the scratch-growth counter (growth depends on how warm the pooled
// workspace happens to be) — so parallel and serial outcomes can be
// compared exactly. Every other Evals counter is deterministic per
// (solver, instance) and stays in the comparison.
func stripWall(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].Wall = 0
		out[i].Evals.Grows = 0
	}
	return out
}

// TestBatchMatchesSerial runs a 1000-instance sweep in parallel and
// serially and requires identical results in identical order.
func TestBatchMatchesSerial(t *testing.T) {
	instances := sweepInstances(t, 1000, 8)
	s, err := Get("acyclic-search")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	serial := make([]Result, len(instances))
	for i, ins := range instances {
		res, err := s.Solve(ctx, ins)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel, err := Batch(ctx, s, instances, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(serial), stripWall(parallel)) {
		t.Fatal("parallel Batch results differ from the serial path")
	}
	// And again with an explicit worker count exceeding the job count.
	parallel2, err := Batch(ctx, s, instances[:3], BatchOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(serial[:3]), stripWall(parallel2)) {
		t.Fatal("oversized pool changed results")
	}
}

func TestBatchByName(t *testing.T) {
	instances := sweepInstances(t, 8, 6)
	rs, err := BatchByName(context.Background(), "cyclic-bound", instances, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Solver != "cyclic-bound" || r.Throughput <= 0 {
			t.Fatalf("result %d degenerate: %+v", i, r)
		}
	}
	if _, err := BatchByName(context.Background(), "nope", instances, BatchOptions{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// TestBatchCancellationMidSweep cancels the context after a prefix of
// the sweep has completed and checks Batch returns promptly with
// ctx.Err() instead of draining the remaining work.
func TestBatchCancellationMidSweep(t *testing.T) {
	const n = 500
	instances := sweepInstances(t, n, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	blocker := NewSolver("blocker", CapHandlesGuarded,
		func(ins *platform.Instance, _ *core.Workspace) (Result, error) {
			if done.Add(1) == 10 {
				cancel()
			}
			return Result{Throughput: 1}, nil
		})
	_, err := Batch(ctx, blocker, instances, BatchOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := done.Load(); got >= n {
		t.Fatalf("cancellation did not stop the sweep: %d/%d jobs ran", got, n)
	}
}

func TestBatchErrorAbortsAndReportsLowestIndex(t *testing.T) {
	instances := sweepInstances(t, 100, 6)
	boom := NewSolver("boom", CapHandlesGuarded,
		func(ins *platform.Instance, _ *core.Workspace) (Result, error) {
			return Result{}, fmt.Errorf("synthetic failure")
		})
	_, err := Batch(context.Background(), boom, instances, BatchOptions{Workers: 8})
	if err == nil {
		t.Fatal("expected error")
	}
	if want := "instance 0"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q (lowest failing index)", err, want)
	}
}

func TestForEachDeterministicFill(t *testing.T) {
	const n = 4096
	got := make([]int, n)
	err := ForEach(context.Background(), n, 0, func(_ context.Context, i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachEmptyAndPreCancelled(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("empty ForEach: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
