// Package trees decomposes acyclic broadcast schemes into weighted
// broadcast (spanning arborescence) trees.
//
// Section II-C of the paper notes that the weighted overlay produced by
// the algorithms "can be decomposed into a set of weighted broadcast
// trees" (Schrijver, Combinatorial Optimization, ch. 53): the scheme
// sustains rate T iff T units of arborescences rooted at the source can
// be packed into the edge capacities. For the acyclic schemes built in
// this repository the decomposition is particularly simple — every
// non-source node receives exactly T, and choosing any positive-residual
// in-edge per node yields an arborescence because all edges point forward
// in the topological order. Each extraction zeroes at least one edge, so
// at most |E| trees are produced.
//
// The decomposition specifies which data goes where at which time: tree
// k of weight w_k carries a w_k-fraction of the stream along its edges.
package trees

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// eps is the float tolerance for residual capacities.
const eps = 1e-9

// Tree is one weighted broadcast tree: Parent[v] is the node v receives
// from (Parent[root] = -1). Nodes outside the tree's span never occur —
// trees returned by Decompose always span all nodes.
type Tree struct {
	Weight float64
	Parent []int
}

// Depth returns the number of hops on the longest root-to-leaf path —
// the streaming delay of this tree (the paper's conclusion lists depth
// optimization as future work; we expose the metric).
func (t *Tree) Depth() int {
	depth := make([]int, len(t.Parent))
	var maxd int
	var rec func(v int) int
	rec = func(v int) int {
		if t.Parent[v] < 0 {
			return 0
		}
		if depth[v] == 0 {
			depth[v] = rec(t.Parent[v]) + 1
		}
		return depth[v]
	}
	for v := range t.Parent {
		if d := rec(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Decompose splits an acyclic scheme of throughput T into weighted
// spanning arborescences rooted at the source, with Σ weights = T and
// per-edge usage within the scheme's rates. It errors out when the
// scheme is cyclic or when some node's in-rate falls short of T.
func Decompose(s *core.Scheme, T float64) ([]Tree, error) {
	if T <= 0 {
		return nil, errors.New("trees: non-positive target throughput")
	}
	g := s.Graph()
	if !g.IsAcyclic() {
		return nil, errors.New("trees: scheme is cyclic; arborescence extraction requires a DAG")
	}
	total := s.Instance().Total()
	for v := 1; v < total; v++ {
		if in := s.InRate(v); in < T-eps*(1+T) {
			return nil, fmt.Errorf("trees: node %d receives %v < T=%v", v, in, T)
		}
	}

	// Residual rates, mutable.
	type edgeKey struct{ from, to int }
	residual := make(map[edgeKey]float64)
	for _, e := range g.Edges() {
		residual[edgeKey{e.From, e.To}] = e.Weight
	}

	var out []Tree
	remaining := T
	for remaining > eps*(1+T) {
		parent := make([]int, total)
		parent[0] = -1
		w := remaining
		// Pick the max-residual in-edge for each node (greedy: fewer,
		// fatter trees) and track the bottleneck.
		for v := 1; v < total; v++ {
			bestFrom, bestRes := -1, eps
			for u := 0; u < total; u++ {
				if u == v {
					continue
				}
				if r := residual[edgeKey{u, v}]; r > bestRes {
					bestFrom, bestRes = u, r
				}
			}
			if bestFrom < 0 {
				return nil, fmt.Errorf("trees: node %d has no residual in-edge with %v of %v left", v, remaining, T)
			}
			parent[v] = bestFrom
			if bestRes < w {
				w = bestRes
			}
		}
		for v := 1; v < total; v++ {
			k := edgeKey{parent[v], v}
			residual[k] -= w
			if residual[k] <= eps {
				delete(residual, k)
			}
		}
		out = append(out, Tree{Weight: w, Parent: parent})
		remaining -= w
	}
	return out, nil
}

// Verify checks that a decomposition is consistent with the scheme: the
// weights sum to T, every tree is a spanning arborescence rooted at the
// source, and per-edge usage stays within the scheme's rates.
func Verify(s *core.Scheme, T float64, ts []Tree) error {
	total := s.Instance().Total()
	sum := 0.0
	type edgeKey struct{ from, to int }
	usage := make(map[edgeKey]float64)
	for idx, tr := range ts {
		if len(tr.Parent) != total {
			return fmt.Errorf("trees: tree %d has %d nodes, want %d", idx, len(tr.Parent), total)
		}
		if tr.Parent[0] != -1 {
			return fmt.Errorf("trees: tree %d not rooted at the source", idx)
		}
		if tr.Weight <= 0 {
			return fmt.Errorf("trees: tree %d has weight %v", idx, tr.Weight)
		}
		sum += tr.Weight
		// Walk each node to the root, bounding steps to detect cycles.
		for v := 1; v < total; v++ {
			u, steps := v, 0
			for u != 0 {
				u = tr.Parent[u]
				if u < 0 || steps > total {
					return fmt.Errorf("trees: tree %d: node %d does not reach the source", idx, v)
				}
				steps++
			}
			usage[edgeKey{tr.Parent[v], v}] += tr.Weight
		}
	}
	if sum < T-eps*(1+T) || sum > T+eps*(1+T) {
		return fmt.Errorf("trees: weights sum to %v, want %v", sum, T)
	}
	for k, u := range usage {
		if c := s.Rate(k.from, k.to); u > c+eps*(1+u) {
			return fmt.Errorf("trees: edge (%d,%d) used %v > rate %v", k.from, k.to, u, c)
		}
	}
	return nil
}
