package bedibe

import (
	"math"
	"math/rand"

	"repro/internal/distribution"
)

// SynthConfig drives synthetic measurement-campaign generation for
// estimator validation: a ground-truth LastMile network is drawn, then
// observed through multiplicative noise and partial sampling — the shape
// of a real PlanetLab-style campaign.
type SynthConfig struct {
	N         int     // number of nodes
	NoiseStd  float64 // multiplicative log-normal-ish noise (0 = exact)
	ObserveP  float64 // probability a pair is measured (1 = full matrix)
	InOverOut float64 // incoming capacity = InOverOut × a fresh draw (ADSL-style asymmetry when > 1)
	Seed      int64
	OutDist   distribution.Distribution // defaults to PlanetLab()
}

// Synthesize draws ground-truth parameters and the noisy partial
// measurement matrix they induce.
func Synthesize(cfg SynthConfig) (truth *LastMileParams, m *Measurements) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dist := cfg.OutDist
	if dist == nil {
		dist = distribution.PlanetLab()
	}
	if cfg.InOverOut <= 0 {
		cfg.InOverOut = 4 // typical download/upload asymmetry
	}
	if cfg.ObserveP <= 0 || cfg.ObserveP > 1 {
		cfg.ObserveP = 1
	}
	truth = &LastMileParams{Out: make([]float64, cfg.N), In: make([]float64, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		truth.Out[i] = dist.Sample(rng)
		truth.In[i] = cfg.InOverOut * dist.Sample(rng)
	}
	bw := make([][]float64, cfg.N)
	for i := range bw {
		bw[i] = make([]float64, cfg.N)
		for j := range bw[i] {
			if i == j {
				continue
			}
			if rng.Float64() >= cfg.ObserveP {
				bw[i][j] = Missing
				continue
			}
			v := truth.Predict(i, j)
			if cfg.NoiseStd > 0 {
				v *= math.Exp(cfg.NoiseStd * rng.NormFloat64())
			}
			bw[i][j] = v
		}
	}
	m = &Measurements{BW: bw}
	return truth, m
}
