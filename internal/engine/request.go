package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/trees"
)

// Request is the typed solve contract of the API v2: one instance plus
// everything the caller wants done with it. Build one with NewRequest
// and functional options; the zero value of every option field means
// "default" (solver "acyclic", no deadline, no verification, scheme
// only if the solver builds one anyway).
//
// A Request selects its algorithm either by registry name (Solver) or,
// when Solver is empty and Need is non-zero, by capability: the
// lexicographically first registered solver providing every bit of
// Need. Exactly this pair — Request in, Plan out — is what the wire
// codec (internal/wire) versions and the HTTP service
// (internal/service) exposes.
type Request struct {
	// Instance is the platform to solve. Required.
	Instance *platform.Instance
	// Solver is the registry name to dispatch to; empty means select by
	// Need (or the default "acyclic" when Need is zero too).
	Solver string
	// Need is the capability selector used when Solver is empty.
	Need Capability
	// Deadline bounds the solve's wall clock; expiry surfaces as
	// ErrCanceled (joined with context.DeadlineExceeded). Zero means no
	// per-request deadline beyond the caller's ctx.
	Deadline time.Duration
	// Tolerance, when positive, makes Execute verify the built scheme by
	// max-flow and fail with ErrInfeasible if the verified throughput
	// falls short of the claimed one by more than Tolerance (relative).
	Tolerance float64
	// WantScheme requires an explicit rate matrix in the plan; solvers
	// without CapBuildsScheme fail the request with ErrInfeasible.
	WantScheme bool
	// WantTrees additionally decomposes the (acyclic) scheme into
	// weighted broadcast trees.
	WantTrees bool
	// ScheduleBlocks, when positive, also discretizes the decomposition
	// into a periodic block-transmission schedule with that many blocks.
	ScheduleBlocks int
	// PrevWord, when non-empty, warm-starts CapIncremental solvers from
	// a previous solution's encoding word (incremental repair after
	// platform churn). Other solvers ignore it.
	PrevWord core.Word
	// cache, when non-nil, memoizes this request's Execute through the
	// content-addressed plan cache (see Cache and WithCache). The field
	// is unexported so it never leaks into the canonical wire encoding:
	// identical requests hash identically with or without a cache
	// attached.
	cache *Cache
}

// RequestOption mutates a Request under construction.
type RequestOption func(*Request)

// NewRequest assembles a Request for the instance with the options
// applied in order.
func NewRequest(ins *platform.Instance, opts ...RequestOption) Request {
	req := Request{Instance: ins}
	for _, opt := range opts {
		opt(&req)
	}
	return req
}

// WithSolver selects the algorithm by registry name.
func WithSolver(name string) RequestOption { return func(r *Request) { r.Solver = name } }

// WithCapabilities selects the algorithm by capability instead of by
// name: the first registered solver (sorted by name) providing every
// bit of need.
func WithCapabilities(need Capability) RequestOption { return func(r *Request) { r.Need = need } }

// WithDeadline bounds the solve's wall clock.
func WithDeadline(d time.Duration) RequestOption { return func(r *Request) { r.Deadline = d } }

// WithTolerance enables post-solve max-flow verification within the
// given relative tolerance (see Request.Tolerance).
func WithTolerance(tol float64) RequestOption { return func(r *Request) { r.Tolerance = tol } }

// WithScheme requires an explicit rate matrix in the plan.
func WithScheme() RequestOption { return func(r *Request) { r.WantScheme = true } }

// WithTrees requires a broadcast-tree decomposition (implies a scheme).
func WithTrees() RequestOption { return func(r *Request) { r.WantTrees = true } }

// WithSchedule requires a periodic transmission schedule over the given
// number of stream blocks (implies trees and a scheme).
func WithSchedule(blocks int) RequestOption { return func(r *Request) { r.ScheduleBlocks = blocks } }

// WithWarmStart hands the solver a previous solution's encoding word
// for incremental repair after platform churn.
func WithWarmStart(prev core.Word) RequestOption { return func(r *Request) { r.PrevWord = prev } }

// WithCache routes the request through a content-addressed plan cache:
// an identical request already solved returns the memoized Plan (treat
// it as immutable) without touching a solver, and concurrent identical
// requests collapse onto one in-flight solve. A nil cache leaves the
// request uncached.
func WithCache(c *Cache) RequestOption { return func(r *Request) { r.cache = c } }

// Plan is the uniform answer to a Request: the solver Result (solver
// name, throughput, word, scheme, degree statistics, eval counters,
// repair provenance) plus the request-level artifacts — the cyclic
// optimum T* for normalization, and the optional tree decomposition
// and periodic schedule.
type Plan struct {
	Result
	// TStar is the closed-form optimal cyclic throughput of the
	// instance (Lemma 5.1), the upper bound every result is normalized
	// against.
	TStar float64
	// Trees is the broadcast-tree decomposition of the scheme (only
	// with WantTrees or ScheduleBlocks).
	Trees []trees.Tree
	// Schedule is the periodic block-transmission plan (only with
	// ScheduleBlocks).
	Schedule *schedule.Plan
}

// Ratio is the plan's throughput normalized by the cyclic optimum T*
// (1.0 = the unbounded-degree bound is met; ≥ 5/7 for optimal acyclic
// solvers by Theorem 6.2).
func (p *Plan) Ratio() float64 {
	if p.TStar <= 0 {
		return 0
	}
	return p.Throughput / p.TStar
}

// Execute runs a Request against the Default registry.
func Execute(ctx context.Context, req Request) (*Plan, error) {
	return Default.Execute(ctx, req)
}

// Execute resolves the request's solver, runs it (warm-starting from
// PrevWord when possible), verifies within Tolerance, and materializes
// the requested artifacts. All failures wrap a typed sentinel:
// ErrUnknownSolver, ErrInfeasible, or ErrCanceled. A request carrying
// a cache (WithCache) is answered from the memoized plan when an
// identical request was already solved.
func (r *Registry) Execute(ctx context.Context, req Request) (*Plan, error) {
	if req.cache != nil {
		return req.cache.execute(ctx, r, req)
	}
	return r.executeUncached(ctx, req)
}

// executeUncached is the always-solve Execute path; cache misses come
// back through here (it ignores req.cache, so the cache never
// re-enters itself).
func (r *Registry) executeUncached(ctx context.Context, req Request) (*Plan, error) {
	if req.Instance == nil {
		return nil, fmt.Errorf("%w: request has no instance", ErrInfeasible)
	}
	s, err := r.resolve(req)
	if err != nil {
		return nil, err
	}
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}

	needScheme := req.WantScheme || req.WantTrees || req.ScheduleBlocks > 0
	if needScheme && !s.Capabilities().Has(CapBuildsScheme) {
		return nil, fmt.Errorf("%w: solver %q does not build schemes", ErrInfeasible, s.Name())
	}

	res, err := solveRequest(ctx, s, req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, canceledErr(ctxErr)
		}
		return nil, err
	}
	plan := &Plan{Result: res, TStar: core.OptimalCyclicThroughput(req.Instance)}

	if needScheme && plan.Scheme == nil {
		return nil, fmt.Errorf("%w: solver %q returned no scheme for this instance", ErrInfeasible, s.Name())
	}
	if req.Tolerance > 0 && plan.Scheme != nil && plan.Verified == 0 {
		ws := AcquireWorkspace()
		plan.Verified = plan.Scheme.ThroughputWithWorkspace(ws)
		ReleaseWorkspace(ws)
		if plan.Verified < plan.Throughput*(1-req.Tolerance) {
			return nil, fmt.Errorf("%w: scheme verifies at %g, below claimed %g beyond tolerance %g",
				ErrInfeasible, plan.Verified, plan.Throughput, req.Tolerance)
		}
	}
	if req.WantTrees || req.ScheduleBlocks > 0 {
		if !plan.Scheme.IsAcyclic() {
			return nil, fmt.Errorf("%w: tree decomposition needs an acyclic scheme (solver %q built a cyclic one)",
				ErrInfeasible, s.Name())
		}
		if plan.Trees, err = trees.Decompose(plan.Scheme, plan.Throughput); err != nil {
			return nil, fmt.Errorf("%w: decomposing scheme: %v", ErrInfeasible, err)
		}
	}
	if req.ScheduleBlocks > 0 {
		if plan.Schedule, err = schedule.Build(plan.Scheme, plan.Throughput, plan.Trees, req.ScheduleBlocks); err != nil {
			return nil, fmt.Errorf("%w: building %d-block schedule: %v", ErrInfeasible, req.ScheduleBlocks, err)
		}
	}
	return plan, nil
}

// resolve picks the request's solver: by name, by capability selector,
// or the default algorithm.
func (r *Registry) resolve(req Request) (Solver, error) {
	if req.Solver != "" {
		return r.Get(req.Solver)
	}
	need := req.Need
	if req.WantScheme || req.WantTrees || req.ScheduleBlocks > 0 {
		need |= CapBuildsScheme
	}
	if need == 0 {
		return r.Get("acyclic")
	}
	if sel := r.Select(need); len(sel) > 0 {
		return sel[0], nil
	}
	return nil, fmt.Errorf("%w: no registered solver provides %s", ErrUnknownSolver, need)
}

// solveRequest runs the solver, routing through its repair entry point
// when the request carries a warm-start word and the solver supports
// incremental re-solve.
func solveRequest(ctx context.Context, s Solver, req Request) (Result, error) {
	fn, _ := s.(*funcSolver)
	if len(req.PrevWord) == 0 || fn == nil || fn.repair == nil {
		return s.Solve(ctx, req.Instance)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, canceledErr(err)
	}
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	before := ws.Stats()
	start := time.Now()
	rr, err := fn.repair(req.Instance, req.PrevWord, ws)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", fn.name, err)
	}
	res := Result{Throughput: rr.T, Scheme: rr.Scheme, Word: rr.Word, Verified: rr.Verified}
	finishResult(&res, fn.name, ws.Stats().Sub(before), start)
	res.Repaired = !rr.FellBack
	return res, nil
}

// ExecuteBatch runs one request per instance-shaped entry on the
// engine worker pool with deterministic ordering (plans[i] answers
// reqs[i]); the first error aborts the sweep.
func ExecuteBatch(ctx context.Context, reqs []Request, opts BatchOptions) ([]*Plan, error) {
	return Default.ExecuteBatch(ctx, reqs, opts)
}

// ExecuteBatch is ExecuteBatch against an explicit registry.
func (r *Registry) ExecuteBatch(ctx context.Context, reqs []Request, opts BatchOptions) ([]*Plan, error) {
	plans := make([]*Plan, len(reqs))
	err := ForEach(ctx, len(reqs), opts.Workers, func(ctx context.Context, i int) error {
		p, err := r.Execute(ctx, reqs[i])
		if err != nil {
			return fmt.Errorf("engine: request %d: %w", i, err)
		}
		plans[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plans, nil
}
